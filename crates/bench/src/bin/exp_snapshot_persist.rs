//! E-persist — "Do persistent snapshots make resume cheap and memory
//! bounded?"
//!
//! Three claims, each asserted:
//!
//! * **Lazy restore**: resuming a quiescent `soc_top` from a TLV image
//!   loads only the sections whose content hash differs from the live
//!   state — zero on an identical target — so the modeled time to the
//!   first quantum is >= 5x cheaper than an eager full restore (the 5x
//!   bar applies to the simulator target, whose full restore walks the
//!   whole process image; the FPGA's cost is reported alongside).
//! * **RAM budget**: a fork-heavy campaign whose snapshot store is
//!   budgeted at a quarter of its unbudgeted peak (a 4x over-commit)
//!   stays under the budget by spilling cold entries to disk, with the
//!   canonical digest bit-identical to the unbudgeted run.
//! * **Campaign resume**: an instruction-budget-interrupted run saved
//!   to disk and resumed by a fresh engine reports the same canonical
//!   digest as one uninterrupted run; the host-side save/load latency
//!   is measured.
//!
//! Usage: `exp_snapshot_persist [--smoke] [--json PATH]`.

use hardsnap::{
    resume_sequential, snapshot_sequential, ConsistencyMode, Engine, EngineConfig, RunResult,
    Searcher, StoreStats,
};
use hardsnap_bench::{banner, fmt_ns, row};
use hardsnap_bus::persist::write_full;
use hardsnap_bus::{HwTarget, SnapshotFile};
use hardsnap_fpga::{FpgaOptions, FpgaTarget};
use hardsnap_sim::SimTarget;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn make_target(fpga: bool) -> Box<dyn HwTarget> {
    let soc = hardsnap_periph::soc().expect("built-in SoC elaborates");
    if fpga {
        Box::new(FpgaTarget::new(soc, &FpgaOptions::default()).expect("fpga target"))
    } else {
        Box::new(SimTarget::new(soc).expect("sim target"))
    }
}

/// A target warmed to a deterministic point: reset, then `cycles`
/// clock ticks with inputs held. Two targets prepared identically hold
/// bit-identical state, which is exactly the quiescent-resume scenario
/// (a fresh process re-creating the device it saved from).
fn prepared_target(fpga: bool, cycles: u64) -> Box<dyn HwTarget> {
    let mut t = make_target(fpga);
    t.reset();
    t.step(cycles);
    t
}

struct LazyPoint {
    target: &'static str,
    eager_ns: u64,
    lazy_ns: u64,
    sections_total: usize,
    sections_loaded: u64,
    bytes_loaded: u64,
    write_us: u128,
    open_us: u128,
}

/// Quiescent resume on one target flavor: capture at cycle 50, persist,
/// then restore the image into an identically prepared target — once
/// eagerly, once lazily — and compare the modeled virtual-time charge.
fn lazy_vs_eager(fpga: bool, dir: &Path) -> LazyPoint {
    let name = if fpga { "fpga" } else { "sim" };
    let mut origin = prepared_target(fpga, 50);
    let snap = origin.save_snapshot().expect("capture");
    let image = write_full(&snap);
    let path = dir.join(format!("quiescent-{name}.hsnap"));
    let t0 = Instant::now();
    std::fs::write(&path, &image).expect("write image");
    let write_us = t0.elapsed().as_micros();
    let t0 = Instant::now();
    let file = SnapshotFile::open(&path).expect("open image");
    let open_us = t0.elapsed().as_micros();

    let mut eager = prepared_target(fpga, 50);
    let v0 = eager.virtual_time_ns();
    eager.restore_snapshot(&snap).expect("eager restore");
    let eager_ns = eager.virtual_time_ns() - v0;

    let mut lazy = prepared_target(fpga, 50);
    let v0 = lazy.virtual_time_ns();
    let lr = lazy.restore_snapshot_lazy(&file).expect("lazy restore");
    let lazy_ns = lazy.virtual_time_ns() - v0;
    assert_eq!(
        lr.sections_loaded, 0,
        "{name}: an identically prepared target must page in nothing"
    );
    // Both paths must land on the captured state bit-for-bit.
    let check = lazy.save_snapshot().expect("verify capture");
    assert_eq!(
        check.content_hash(),
        snap.content_hash(),
        "{name}: lazy restore diverged from the image"
    );
    LazyPoint {
        target: name,
        eager_ns,
        lazy_ns,
        sections_total: lr.sections_total,
        sections_loaded: 0,
        bytes_loaded: lr.bytes_loaded,
        write_us,
        open_us,
    }
}

/// A divergent resume for the table: the live target scribbled into
/// the SHA block registers before the restore, so only the sections
/// those writes dirtied page in — the untouched peripherals don't.
fn lazy_divergent(fpga: bool, dir: &Path) -> LazyPoint {
    let name = if fpga { "fpga" } else { "sim" };
    let mut origin = prepared_target(fpga, 50);
    let snap = origin.save_snapshot().expect("capture");
    let path = dir.join(format!("divergent-{name}.hsnap"));
    std::fs::write(&path, write_full(&snap)).expect("write image");
    let file = SnapshotFile::open(&path).expect("open image");
    let mut lazy = prepared_target(fpga, 50);
    // SHA-256 is slave 2 in the SoC window, so its block registers sit
    // at 0x4000_2000 + the peripheral-local offset.
    let sha_block0 = 0x4000_2000 + hardsnap_periph::regs::sha256::BLOCK0;
    for i in 0..4u32 {
        lazy.bus_write(sha_block0 + 4 * i, 0xDEAD_0000 | i)
            .expect("dirtying write");
    }
    let v0 = lazy.virtual_time_ns();
    let lr = lazy.restore_snapshot_lazy(&file).expect("lazy restore");
    let lazy_ns = lazy.virtual_time_ns() - v0;
    assert!(
        lr.sections_loaded > 0,
        "{name}: the dirtying writes must force at least one section in"
    );
    let check = lazy.save_snapshot().expect("verify capture");
    assert_eq!(check.content_hash(), snap.content_hash());
    LazyPoint {
        target: name,
        eager_ns: 0,
        lazy_ns,
        sections_total: lr.sections_total,
        sections_loaded: lr.sections_loaded as u64,
        bytes_loaded: lr.bytes_loaded,
        write_us: 0,
        open_us: 0,
    }
}

struct CampaignRun {
    result: RunResult,
    peak_bytes: usize,
    stats: StoreStats,
}

fn engine_for(k: u32, config: EngineConfig) -> Engine {
    let prog = hardsnap_isa::assemble(&hardsnap::firmware::branching_firmware(k))
        .expect("demo firmware assembles");
    let mut e = Engine::new(make_target(false), config);
    e.load_firmware(&prog);
    e
}

fn campaign(k: u32, budget: Option<usize>, max_instructions: Option<u64>) -> (Engine, CampaignRun) {
    let mut config = EngineConfig {
        mode: ConsistencyMode::HardSnap,
        searcher: Searcher::RoundRobin,
        snapshot_mem_budget: budget,
        ..Default::default()
    };
    if let Some(n) = max_instructions {
        config.max_instructions = n;
    }
    let mut e = engine_for(k, config);
    let result = e.run();
    let run = CampaignRun {
        result,
        peak_bytes: e.store.peak_bytes(),
        stats: e.store.stats(),
    };
    (e, run)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_snapshot_persist.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }

    banner(
        "E-persist",
        "Persistent snapshots: lazy restore, RAM budget, campaign resume",
        "resuming a quiescent target from disk pages in nothing and beats an \
         eager restore >= 5x; a 4x over-committed store spills to disk and \
         stays under budget with the digest unchanged; an interrupted \
         campaign resumed by a fresh engine reports the uninterrupted digest.",
    );

    let dir: PathBuf =
        std::env::temp_dir().join(format!("hardsnap-exp-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    // --- 1. Lazy vs eager restore -----------------------------------
    let widths = [6, 10, 12, 12, 10, 12, 10, 10];
    row(
        &[
            "target", "resume", "eager", "lazy", "sections", "bytes-in", "write-us", "open-us",
        ],
        &widths,
    );
    let mut lazy_points = Vec::new();
    for fpga in [false, true] {
        let p = lazy_vs_eager(fpga, &dir);
        row(
            &[
                p.target,
                "quiescent",
                &fmt_ns(p.eager_ns),
                &fmt_ns(p.lazy_ns),
                &format!("0/{}", p.sections_total),
                &p.bytes_loaded.to_string(),
                &p.write_us.to_string(),
                &p.open_us.to_string(),
            ],
            &widths,
        );
        if !fpga {
            assert!(
                p.lazy_ns.saturating_mul(5) <= p.eager_ns,
                "sim: lazy quiescent resume {} ns is not >= 5x cheaper than eager {} ns",
                p.lazy_ns,
                p.eager_ns
            );
        }
        let d = lazy_divergent(fpga, &dir);
        row(
            &[
                d.target,
                "divergent",
                "-",
                &fmt_ns(d.lazy_ns),
                &format!("{}/{}", d.sections_loaded, d.sections_total),
                &d.bytes_loaded.to_string(),
                "-",
                "-",
            ],
            &widths,
        );
        lazy_points.push((p, d));
    }

    // --- 2. RAM-budgeted fork-heavy campaign ------------------------
    let k = if smoke { 3 } else { 5 };
    let (_, unbudgeted) = campaign(k, None, None);
    let budget = (unbudgeted.peak_bytes / 4).max(1);
    let (_, budgeted) = campaign(k, Some(budget), None);
    println!();
    println!(
        "fork-heavy (2^{k} paths): unbudgeted peak {} bytes -> budget {budget} bytes (4x over-commit)",
        unbudgeted.peak_bytes
    );
    println!(
        "  budgeted peak {} bytes, {} spills, {} page-ins, digest {}",
        budgeted.peak_bytes,
        budgeted.stats.spills,
        budgeted.stats.page_ins,
        if budgeted.result.canonical_digest() == unbudgeted.result.canonical_digest() {
            "unchanged"
        } else {
            "DIVERGED"
        }
    );
    assert_eq!(
        budgeted.result.canonical_digest(),
        unbudgeted.result.canonical_digest(),
        "RAM budget must not change analysis results"
    );
    assert!(
        budgeted.peak_bytes <= budget,
        "resident peak {} exceeds the {budget}-byte budget",
        budgeted.peak_bytes
    );
    assert!(
        budgeted.stats.spills > 0,
        "a 4x over-commit must actually spill"
    );

    // --- 3. Campaign save -> fresh-engine resume --------------------
    let cut = (unbudgeted.result.instructions / 3).max(1);
    let (mut partial_engine, partial) = campaign(k, None, Some(cut));
    assert!(
        partial.result.metrics.paths_completed < unbudgeted.result.metrics.paths_completed,
        "the instruction cut must actually interrupt the campaign"
    );
    let campaign_dir = dir.join("campaign");
    let t0 = Instant::now();
    snapshot_sequential(&campaign_dir, &mut partial_engine, &partial.result)
        .expect("campaign save");
    let save_us = t0.elapsed().as_micros();
    drop(partial_engine);

    // No load_firmware here: the frontier carries the program state.
    let mut resumed_engine = Engine::new(
        make_target(false),
        EngineConfig {
            mode: ConsistencyMode::HardSnap,
            searcher: Searcher::RoundRobin,
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    resume_sequential(&campaign_dir, &mut resumed_engine).expect("campaign load");
    let load_us = t0.elapsed().as_micros();
    let resumed = resumed_engine.run();
    println!();
    println!(
        "campaign resume: saved in {save_us} us, loaded in {load_us} us, \
         {} -> {} paths, digest {}",
        partial.result.metrics.paths_completed,
        resumed.metrics.paths_completed,
        if resumed.canonical_digest() == unbudgeted.result.canonical_digest() {
            "matches the uninterrupted run"
        } else {
            "DIVERGED"
        }
    );
    assert_eq!(
        resumed.canonical_digest(),
        unbudgeted.result.canonical_digest(),
        "save -> resume must report exactly what one uninterrupted run would"
    );

    // --- JSON --------------------------------------------------------
    let mut lazy_entries = String::new();
    for (i, (q, d)) in lazy_points.iter().enumerate() {
        if i > 0 {
            lazy_entries.push_str(",\n");
        }
        lazy_entries.push_str(&format!(
            "    {{\"target\": \"{}\", \"eager_restore_ns\": {}, \"lazy_quiescent_ns\": {}, \
             \"lazy_divergent_ns\": {}, \"divergent_sections_loaded\": {}, \
             \"sections_total\": {}, \"image_write_us\": {}, \"image_open_us\": {}, \
             \"speedup\": {:.1}}}",
            q.target,
            q.eager_ns,
            q.lazy_ns,
            d.lazy_ns,
            d.sections_loaded,
            q.sections_total,
            q.write_us,
            q.open_us,
            q.eager_ns as f64 / q.lazy_ns.max(1) as f64
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"snapshot_persist\",\n  \
         \"design\": \"soc_top\",\n  \
         \"metric\": \"modeled virtual-time ns (restore), host us (save/load), bytes (budget)\",\n  \
         \"lazy_restore\": [\n{lazy_entries}\n  ],\n  \
         \"budget\": {{\"paths\": {paths}, \"unbudgeted_peak_bytes\": {peak0}, \
         \"budget_bytes\": {budget}, \"budgeted_peak_bytes\": {peak1}, \"spills\": {spills}, \
         \"page_ins\": {pins}, \"digest_unchanged\": true}},\n  \
         \"campaign\": {{\"save_us\": {save_us}, \"load_us\": {load_us}, \
         \"partial_paths\": {ppaths}, \"resumed_paths\": {rpaths}, \
         \"digest\": \"{digest:#018x}\"}}\n}}\n",
        paths = 1u64 << k,
        peak0 = unbudgeted.peak_bytes,
        peak1 = budgeted.peak_bytes,
        spills = budgeted.stats.spills,
        pins = budgeted.stats.page_ins,
        ppaths = partial.result.metrics.paths_completed,
        rpaths = resumed.metrics.paths_completed,
        digest = resumed.canonical_digest(),
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!("recorded {json_path}");
}
