//! E-sim — "How much faster is compiled RTL evaluation?"
//!
//! Raw simulation throughput of the three RTL evaluation backends over
//! the peripheral corpus and the full SoC, under two workloads:
//!
//! * **active** — an input net is poked with fresh random data every
//!   cycle, so a real cone of logic re-evaluates each step;
//! * **quiescent** — inputs held constant after reset, the regime the
//!   dirty-cone scheduler is built for (an idle peripheral's fabric
//!   settles and stays settled, so almost every comb op is skipped).
//!
//! Every measured run must end in the same architectural state on all
//! three engines (checksum over every net and memory word) — a
//! throughput number from a diverging simulator is worthless.
//!
//! Usage: `exp_sim_throughput [--smoke] [--json PATH]`.

use hardsnap_bench::{banner, row};
use hardsnap_rtl::{Module, PortDir};
use hardsnap_sim::{SimEngine, Simulator};
use hardsnap_util::Rng;
use std::time::Instant;

const ENGINES: [SimEngine; 3] = [
    SimEngine::Interpreter,
    SimEngine::BytecodeFullEval,
    SimEngine::Bytecode,
];

/// Pulses `rst` (when present) and leaves the design in its post-reset
/// steady state.
fn reset(sim: &mut Simulator) {
    if sim.module().find_net("rst").is_some() {
        sim.poke("rst", 1).unwrap();
        sim.step(2);
        sim.poke("rst", 0).unwrap();
        sim.step(1);
    }
}

/// FNV-1a over every net value and memory word: engines must agree on
/// the full architectural state, not just some outputs.
fn state_checksum(sim: &Simulator) -> u64 {
    let module = sim.module().clone();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (id, _) in module.iter_nets() {
        mix(sim.peek_id(id).bits());
    }
    for (id, _) in module.iter_mems() {
        for &w in sim.mem_words(id) {
            mix(w);
        }
    }
    h
}

/// One measured run: returns (cycles per host second, final checksum,
/// comb ops executed, comb ops skipped).
fn measure(
    module: &Module,
    engine: SimEngine,
    cycles: u64,
    active: bool,
    reps: u32,
) -> (f64, u64, u64, u64) {
    let inputs: Vec<_> = module
        .ports()
        .filter(|(_, n)| n.port == Some(PortDir::Input) && n.name != "clk" && n.name != "rst")
        .map(|(id, _)| id)
        .collect();
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    let mut activity = (0, 0);
    for _ in 0..reps {
        let mut sim = Simulator::with_engine(module.clone(), engine).unwrap();
        reset(&mut sim);
        let mut rng = Rng::seed_from_u64(0x51_7480);
        let t0 = Instant::now();
        if active {
            for _ in 0..cycles {
                let id = inputs[rng.gen_range(0..inputs.len())];
                sim.poke_id(id, rng.next_u64());
                sim.step(1);
            }
        } else {
            sim.step(cycles);
        }
        best = best.min(t0.elapsed().as_secs_f64());
        checksum = state_checksum(&sim);
        activity = sim.comb_activity();
    }
    (cycles as f64 / best, checksum, activity.0, activity.1)
}

struct Row {
    design: String,
    workload: &'static str,
    hz: [f64; 3],
    skip_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_sim_throughput.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }
    let (cycles_active, cycles_quiet, reps) = if smoke {
        (500, 2_000, 1)
    } else {
        (5_000, 20_000, 3)
    };

    banner(
        "E-sim",
        "Compiled RTL evaluation: bytecode + dirty-cone vs interpreter",
        "levelized bytecode beats the tree-walking interpreter outright; \
         activity-driven scheduling adds a large factor on idle fabric",
    );
    let mut designs: Vec<(String, Module)> = hardsnap_periph::corpus()
        .into_iter()
        .map(|(name, f)| (name.to_string(), f().unwrap()))
        .collect();
    designs.push(("soc_top".to_string(), hardsnap_periph::soc().unwrap()));

    let widths = [8, 10, 12, 14, 12, 10, 10, 7];
    row(
        &[
            "design",
            "workload",
            "interp",
            "bytecode-full",
            "bytecode",
            "vs-interp",
            "vs-full",
            "skip%",
        ],
        &widths,
    );
    let mut rows = Vec::new();
    for (name, module) in &designs {
        for (workload, cycles) in [("active", cycles_active), ("quiescent", cycles_quiet)] {
            let active = workload == "active";
            let mut hz = [0.0f64; 3];
            let mut sums = [0u64; 3];
            let mut skip_pct = 0.0;
            for (e, &engine) in ENGINES.iter().enumerate() {
                let (rate, sum, exec, skip) = measure(module, engine, cycles, active, reps);
                hz[e] = rate;
                sums[e] = sum;
                if engine == SimEngine::Bytecode && exec + skip > 0 {
                    skip_pct = 100.0 * skip as f64 / (exec + skip) as f64;
                }
            }
            assert!(
                sums[1] == sums[0] && sums[2] == sums[0],
                "{name}/{workload}: engines diverged ({:016x} {:016x} {:016x})",
                sums[0],
                sums[1],
                sums[2]
            );
            row(
                &[
                    name,
                    workload,
                    &format!("{:.2} MHz", hz[0] / 1e6),
                    &format!("{:.2} MHz", hz[1] / 1e6),
                    &format!("{:.2} MHz", hz[2] / 1e6),
                    &format!("{:.1}x", hz[2] / hz[0]),
                    &format!("{:.1}x", hz[2] / hz[1]),
                    &format!("{skip_pct:.0}%"),
                ],
                &widths,
            );
            rows.push(Row {
                design: name.clone(),
                workload,
                hz,
                skip_pct,
            });
        }
    }

    // The acceptance bars from the issue: compiled evaluation is worth
    // shipping only if it clearly beats the interpreter on real logic
    // and the dirty-cone pass pays off on idle fabric.
    if !smoke {
        for r in &rows {
            let speedup = r.hz[2] / r.hz[0];
            if (r.design == "aes128" || r.design == "soc_top") && r.workload == "active" {
                assert!(
                    speedup >= 2.0,
                    "{}/active: bytecode only {speedup:.2}x over interpreter",
                    r.design
                );
            }
            if r.design == "soc_top" && r.workload == "quiescent" {
                assert!(
                    speedup >= 5.0,
                    "soc_top/quiescent: bytecode only {speedup:.2}x over interpreter"
                );
            }
        }
    }

    let mut entries = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"design\": \"{}\", \"workload\": \"{}\", \
             \"interp_hz\": {:.0}, \"bytecode_full_hz\": {:.0}, \"bytecode_hz\": {:.0}, \
             \"speedup_vs_interp\": {:.2}, \"speedup_vs_full\": {:.2}, \
             \"comb_skip_pct\": {:.1}}}",
            r.design,
            r.workload,
            r.hz[0],
            r.hz[1],
            r.hz[2],
            r.hz[2] / r.hz[0],
            r.hz[2] / r.hz[1],
            r.skip_pct,
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"sim_throughput\",\n  \
         \"workloads\": \"active = random input poke per cycle; quiescent = inputs held after reset\",\n  \
         \"cycles\": {{\"active\": {cycles_active}, \"quiescent\": {cycles_quiet}}}, \"reps\": {reps},\n  \
         \"metric\": \"simulated cycles per host second (best of reps); engines checksum-verified\",\n  \
         \"points\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!();
    println!("recorded {json_path}");
    println!("note: all three engines are checksum-verified against each other");
    println!("on every row before a number is reported; 'skip%' is the share of");
    println!("comb bytecode the dirty-cone scheduler never had to execute.");
}
