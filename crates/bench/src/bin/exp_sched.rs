//! E-sched — "Does a warm replica pool cut time-to-first-quantum, and
//! can a priority scheduler reorder work without touching a digest?"
//!
//! Exercises the two ISSUE-10 mechanisms end to end through a real
//! in-process daemon and records the numbers the board-farm story
//! needs. Three phases:
//!
//! 1. **Warm start**: the same tiny job runs through the job runner
//!    from a cold boot (parse + elaborate + compile the SoC) and from
//!    a warm armed prototype (`fork_clean`, exactly what the daemon's
//!    pool hands out); wall time to the terminal leg is the
//!    time-to-first-quantum proxy (the job itself is tiny, so replica
//!    acquisition dominates). The warm run must be at least 5x faster
//!    and digest bit-identically.
//! 2. **Narrow behind wide**: one long job holds a replica, a
//!    2-worker wide job heads the queue, then a burst of narrow jobs
//!    lands behind it. Under strict FIFO the unseatable wide head
//!    blocks every narrow job; under lanes the narrows pack past it
//!    (and aging still seats the wide job). p99 narrow queue wait must
//!    improve.
//! 3. **Digest invariance**: the phase-2 mix runs under both policies;
//!    every job's canonical digest must be bit-identical between the
//!    FIFO and lanes orderings — scheduling decides *when*, never
//!    *what*.
//!
//! Usage: `exp_sched [--smoke] [--json PATH]`.

use hardsnap::CancelToken;
use hardsnap_bench::{banner, row};
use hardsnap_serve::{
    runner, Daemon, DaemonConfig, JobSpec, JobState, ReplicaSource, SchedPolicy, Verdict,
};
use hardsnap_sim::{SimEngine, SimTarget};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hardsnap-exp-sched-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn demo_spec(name: &str, k: u32, leg: u64) -> JobSpec {
    JobSpec {
        name: name.into(),
        firmware: format!("demo:{k}"),
        leg_instructions: leg,
        ..JobSpec::default()
    }
}

struct WarmStart {
    trials: usize,
    cold_us: u64,
    warm_us: u64,
    speedup: f64,
    digests_match: bool,
}

/// Phase 1: min-of-N wall time for the runner to take a tiny job to
/// its terminal leg, cold boot vs warm fork. The warm side forks from
/// an armed prototype — the very object a daemon pool lease wraps —
/// so the delta is precisely what `--warm-pool` buys per job.
fn phase_warm_start(k: u32, trials: usize) -> WarmStart {
    let proto = SimTarget::with_engine(hardsnap_periph::soc().expect("soc"), SimEngine::Bytecode)
        .expect("prototype");
    let spec = demo_spec("ttfq", k, 0);
    let run = |source: &ReplicaSource<'_>, dir: &std::path::Path| {
        let t0 = Instant::now();
        let out = runner::run_job_with_source(
            &spec,
            dir,
            &CancelToken::new(),
            false,
            source,
            &mut |_| {},
        )
        .expect("run");
        assert_eq!(out.verdict, Verdict::Completed);
        (t0.elapsed().as_micros() as u64, out.digest)
    };
    let mut cold_us = u64::MAX;
    let mut warm_us = u64::MAX;
    let mut digests_match = true;
    for t in 0..trials {
        let (c_us, c_digest) = run(&ReplicaSource::Cold, &tmp(&format!("ttfq-cold-{t}")));
        let (w_us, w_digest) = run(
            &ReplicaSource::Warm(&proto),
            &tmp(&format!("ttfq-warm-{t}")),
        );
        cold_us = cold_us.min(c_us);
        warm_us = warm_us.min(w_us);
        digests_match &= c_digest == w_digest;
    }
    WarmStart {
        trials,
        cold_us,
        warm_us,
        speedup: cold_us as f64 / warm_us.max(1) as f64,
        digests_match,
    }
}

struct MixRun {
    narrow_waits_ms: Vec<u64>,
    wide_wait_ms: u64,
    total_ms: u64,
    /// name -> canonical digest, for the cross-policy invariance check.
    digests: BTreeMap<String, String>,
}

/// Phase 2/3 workload: `hold` occupies one of two replicas, `wide`
/// (2 workers, unseatable while `hold` runs) heads the queue, then
/// `narrow` single-worker jobs land behind it.
fn run_mix(policy: SchedPolicy, hold_k: u32, narrow: usize) -> MixRun {
    let d = Daemon::new(DaemonConfig {
        state_dir: tmp(&format!("mix-{}", policy.as_str())),
        pool_replicas: 2,
        queue_max: narrow + 4,
        sched: policy,
        aging_ms: 400,
        ..DaemonConfig::default()
    })
    .expect("daemon");
    let t0 = Instant::now();
    let hold_id = d.submit(demo_spec("hold", hold_k, 64)).expect("admit hold");
    // The wide job must arrive while `hold` is demonstrably running,
    // otherwise it seats instantly and there is nothing to measure.
    let seated = Instant::now() + Duration::from_secs(120);
    while d.status(Some(hold_id))[0].state == JobState::Queued {
        assert!(Instant::now() < seated, "hold job never seated");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut wide = demo_spec("wide", 4, 0);
    wide.workers = 2;
    wide.priority = 3;
    let wide_id = d.submit(wide).expect("admit wide");
    let narrow_ids: Vec<u64> = (0..narrow)
        .map(|i| {
            let mut s = demo_spec(&format!("n{i}"), 2 + (i % 3) as u32, 0);
            s.priority = 5;
            d.submit(s).expect("admit narrow")
        })
        .collect();
    assert!(d.wait_idle(Duration::from_secs(600)), "mix hung");
    let total_ms = t0.elapsed().as_millis() as u64;

    let mut digests = BTreeMap::new();
    let mut narrow_waits_ms = Vec::new();
    for s in d.status(None) {
        assert_eq!(
            s.verdict,
            Some(Verdict::Completed),
            "job {} ({}) did not complete",
            s.id,
            s.name
        );
        digests.insert(s.name.clone(), s.digest.clone().expect("digest"));
        if narrow_ids.contains(&s.id) {
            narrow_waits_ms.push(s.queue_wait_ms);
        }
    }
    let wide_wait_ms = d.status(Some(wide_id))[0].queue_wait_ms;
    MixRun {
        narrow_waits_ms,
        wide_wait_ms,
        total_ms,
        digests,
    }
}

fn pctl(mut v: Vec<u64>, p: f64) -> u64 {
    assert!(!v.is_empty());
    v.sort_unstable();
    let idx = ((v.len() as f64 * p).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut json_path = "BENCH_sched.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                json_path = args.get(i).expect("--json needs a path").clone();
            }
            other => panic!("unknown argument {other:?} (try --smoke / --json PATH)"),
        }
        i += 1;
    }
    let trials = if smoke { 2 } else { 3 };
    let hold_k: u32 = if smoke { 5 } else { 7 };
    let narrow = if smoke { 4 } else { 8 };

    banner(
        "E-sched",
        "Warm replica pools + budget-aware scheduling",
        "a warm pool must cut time-to-first-quantum >= 5x and priority \
         lanes must cut narrow-behind-wide queue waits, all without \
         changing any canonical digest",
    );
    println!();

    println!("--- phase 1: warm vs cold time-to-first-quantum (min of {trials}) ---");
    let ws = phase_warm_start(1, trials);
    let widths = [14, 14, 10, 14];
    row(&["cold", "warm", "speedup", "digests match"], &widths);
    row(
        &[
            &format!("{} us", ws.cold_us),
            &format!("{} us", ws.warm_us),
            &format!("{:.1}x", ws.speedup),
            &ws.digests_match.to_string(),
        ],
        &widths,
    );
    assert!(ws.digests_match, "warm replica changed the digest");
    if !smoke {
        assert!(
            ws.speedup >= 5.0,
            "warm start speedup {:.1}x below the 5x bar",
            ws.speedup
        );
    }

    println!();
    println!("--- phase 2: narrow-behind-wide, fifo vs lanes ({narrow} narrow jobs) ---");
    let fifo = run_mix(SchedPolicy::Fifo, hold_k, narrow);
    let lanes = run_mix(SchedPolicy::Lanes, hold_k, narrow);
    let fifo_p99 = pctl(fifo.narrow_waits_ms.clone(), 0.99);
    let lanes_p99 = pctl(lanes.narrow_waits_ms.clone(), 0.99);
    let widths = [8, 16, 16, 14, 12];
    row(
        &[
            "policy",
            "narrow p99 wait",
            "wide wait",
            "fleet total",
            "jobs",
        ],
        &widths,
    );
    for (name, run, p99) in [("fifo", &fifo, fifo_p99), ("lanes", &lanes, lanes_p99)] {
        row(
            &[
                name,
                &format!("{p99} ms"),
                &format!("{} ms", run.wide_wait_ms),
                &format!("{} ms", run.total_ms),
                &(run.narrow_waits_ms.len() + 2).to_string(),
            ],
            &widths,
        );
    }
    // Smoke fleets are too small for a stable percentile; the full run
    // enforces the paper-grade ordering.
    if !smoke {
        assert!(
            lanes_p99 < fifo_p99,
            "lanes p99 {lanes_p99} ms did not improve on fifo p99 {fifo_p99} ms"
        );
    }

    println!();
    println!("--- phase 3: digest invariance across scheduling policies ---");
    assert_eq!(
        fifo.digests, lanes.digests,
        "scheduling order changed a canonical digest"
    );
    println!(
        "{} jobs, every digest bit-identical between fifo and lanes",
        fifo.digests.len()
    );

    let json = format!(
        "{{\n  \"experiment\": \"sched\",\n  \
         \"workload\": \"tiny demo job (warm-start), hold + wide + {narrow} narrow jobs (lanes)\",\n  \
         \"invariant\": \"warm pools and priority lanes change when jobs run, never their digests\",\n  \
         \"warm_start\": {{\"trials\": {}, \"cold_us\": {}, \"warm_us\": {}, \"speedup\": {:.1}, \"digests_match\": {}}},\n  \
         \"narrow_behind_wide\": {{\"jobs\": {}, \"fifo_p99_wait_ms\": {}, \"lanes_p99_wait_ms\": {}, \"fifo_wide_wait_ms\": {}, \"lanes_wide_wait_ms\": {}}},\n  \
         \"digest_invariance\": {{\"jobs\": {}, \"fifo_equals_lanes\": {}}}\n}}\n",
        ws.trials,
        ws.cold_us,
        ws.warm_us,
        ws.speedup,
        ws.digests_match,
        narrow,
        fifo_p99,
        lanes_p99,
        fifo.wide_wait_ms,
        lanes.wide_wait_ms,
        fifo.digests.len(),
        fifo.digests == lanes.digests,
    );
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!();
    println!("recorded {json_path}");
    println!("note: phase 2 submits the wide job only once `hold` is observed");
    println!("running, so the wide head is genuinely unseatable; lanes packing");
    println!("seats the narrow burst past it while aging still guarantees the");
    println!("wide job a seat, and phase 3 pins that none of this reordering");
    println!("ever changes a canonical digest.");
}
