//! T1 — Table I of the paper: qualitative comparison with related work.
//!
//! This table is taxonomy, not measurement; it is reprinted here so the
//! harness covers every table, with HardSnap's column produced from the
//! actual capabilities of this reproduction.

use hardsnap_bench::banner;

fn main() {
    banner(
        "T1",
        "Comparison of HardSnap with related work (paper Table I)",
        "HardSnap: symbolic execution + full visibility/controllability + \
         HW/SW consistency + automated peripheral support + fast forwarding",
    );
    let rows = [
        ("", "S2E", "Avatar", "Inception", "Verilator", "HardSnap"),
        ("Abstraction level", "B", "P", "P", "L", "B/L/P"),
        ("Symbolic execution", "yes", "yes", "yes", "no", "yes"),
        ("Full visibility", "yes", "no", "no", "yes", "yes"),
        ("Full controllability", "yes", "no", "no", "yes", "yes"),
        ("HW/SW consistency", "yes", "no", "no", "n/a", "yes"),
        ("Automated periph. model", "no", "yes", "yes", "yes", "yes"),
        ("Fast forwarding", "-", "no", "yes", "-", "yes"),
        ("Open source", "yes", "yes", "yes", "yes", "yes"),
    ];
    for r in rows {
        println!(
            "{:<26} {:>8} {:>8} {:>10} {:>10} {:>9}",
            r.0, r.1, r.2, r.3, r.4, r.5
        );
    }
    println!();
    println!("(L: logical/RTL, P: physical, B: behavioral — as in the paper)");
    println!("HardSnap column verified by this reproduction's test suite:");
    println!("  - symbolic execution: hardsnap-symex");
    println!("  - visibility/controllability: SimTarget peek/poke + FPGA scan chain");
    println!("  - consistency: Algorithm-1 engine tests (crates/core/tests)");
    println!("  - automated peripherals: Verilog frontend + scan pass, no hand models");
}
