//! Root integration surface of the HardSnap reproduction workspace:
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration/property tests (`tests/`). The library itself just
//! re-exports the core crate; depend on the individual `hardsnap-*`
//! crates directly in real projects.

pub use hardsnap;
